//! MOP detection (Section 5.1): examines the renamed instruction stream
//! through a triangular dependence matrix and generates MOP pointers.
//!
//! The detector consumes one rename group per [`MopDetector::step`] and
//! retains enough previous groups to cover the configured scope (8
//! instructions = two 4-wide groups in the paper). Within the window it
//!
//! 1. marks register dependences — a cell `(i, j)` holds the *number of
//!    source operands of the consumer `j`* ("1" or "2"), exactly as in
//!    Figure 9;
//! 2. scans each eligible column (a value-generating candidate that is not
//!    already a head/tail and has no cached pointer) downward, selecting
//!    the first eligible row, where a mark of "2" may only be chosen when
//!    it is the **first mark in the column** — the conservative
//!    cycle-detection heuristic of Figure 8(c) (or, in
//!    [`CycleDetection::Precise`] mode, a real in-window reachability
//!    check, used for the paper's >90 %-coverage ablation);
//! 3. resolves rows claimed by several columns in favor of the oldest
//!    column (the priority decoder);
//! 4. enforces the wakeup-array source limit (two distinct source tags for
//!    CAM-style wakeup), the 3-bit pointer offset, and the control-flow
//!    rules of Section 5.1.3 (at most one taken *direct* transfer between
//!    head and tail, none indirect);
//! 5. afterwards pairs remaining candidates with identical (or no) source
//!    origins into **independent MOPs** (Section 5.4.1).

use mos_isa::{DynInst, Program, Reg, StaticInst};

use crate::config::{CycleDetection, MopConfig};
use crate::pointer::MopPointer;

/// How control left an instruction toward the next one in the dynamic
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlOut {
    /// Fell through (includes not-taken branches).
    FallThrough,
    /// Taken direct branch, jump or call — encodable in the pointer's
    /// control bit.
    TakenDirect,
    /// Taken indirect jump or return — pointers may not span these.
    TakenIndirect,
}

/// Detection-logic view of one renamed dynamic instruction.
#[derive(Debug, Clone)]
pub struct DetectInst {
    /// Static index.
    pub sidx: u32,
    /// I-cache line address the instruction (and thus its pointer) lives on.
    pub line_addr: u64,
    /// Macro-op candidate (single-cycle operation)?
    pub is_candidate: bool,
    /// Candidate that writes a register (potential MOP head)?
    pub is_valuegen: bool,
    /// Logical destination register.
    pub dst: Option<Reg>,
    /// Logical source registers (zero register excluded).
    pub srcs: Vec<Reg>,
    /// Control transition from this instruction to the next in the stream.
    pub ctrl_out: CtrlOut,
}

impl DetectInst {
    /// Build the detection view of a dynamic instruction.
    pub fn from_dyn(program: &Program, d: &DynInst) -> DetectInst {
        let inst = program.inst(d.sidx).expect("trace sidx in range");
        DetectInst::from_static(d.sidx, inst, d.taken, program.pc_of(d.sidx) & !63)
    }

    /// Build the detection view from static pieces (testing convenience).
    pub fn from_static(sidx: u32, inst: &StaticInst, taken: bool, line_addr: u64) -> DetectInst {
        use mos_isa::InstClass::*;
        let ctrl_out = if !taken {
            CtrlOut::FallThrough
        } else if matches!(inst.class(), IndirectJump | Return) {
            CtrlOut::TakenIndirect
        } else {
            CtrlOut::TakenDirect
        };
        DetectInst {
            sidx,
            line_addr,
            is_candidate: inst.is_mop_candidate(),
            is_valuegen: inst.is_value_generating_candidate(),
            dst: inst.dst(),
            srcs: inst.src_regs().collect(),
            ctrl_out,
        }
    }
}

/// A pair found by detection, ready for pointer installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedPair {
    /// Head static index (where the pointer is stored).
    pub head_sidx: u32,
    /// I-cache line of the head.
    pub head_line: u64,
    /// The pointer to install.
    pub pointer: MopPointer,
    /// `true` when the pair is an independent MOP (identical sources)
    /// rather than a dependent one.
    pub independent: bool,
}

#[derive(Debug, Clone)]
struct Slot {
    inst: DetectInst,
    head: bool,
    tail: bool,
}

/// Aggregate detection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Dependent pairs emitted.
    pub dependent_pairs: u64,
    /// Independent pairs emitted.
    pub independent_pairs: u64,
    /// Pairings rejected by the cycle policy.
    pub cycle_rejects: u64,
    /// Pairings rejected by the source-count limit.
    pub src_limit_rejects: u64,
    /// Pairings rejected by control-flow rules or offset range.
    pub flow_rejects: u64,
}

/// The MOP detection engine. Feed one rename group per call to
/// [`MopDetector::step`]; it holds the previous groups needed to cover the
/// configured scope.
#[derive(Debug, Clone)]
pub struct MopDetector {
    config: MopConfig,
    max_srcs: Option<usize>,
    group_width: usize,
    window: Vec<Slot>,
    stats: DetectStats,
}

impl MopDetector {
    /// Create a detector. `group_width` is the rename width (4 in the
    /// paper); `max_srcs` is the wakeup-array source limit
    /// ([`crate::WakeupStyle::max_entry_sources`]).
    pub fn new(config: MopConfig, max_srcs: Option<usize>, group_width: usize) -> MopDetector {
        assert!(group_width > 0);
        assert!(config.scope >= 2, "scope must cover at least a pair");
        MopDetector {
            config,
            max_srcs,
            group_width,
            window: Vec::new(),
            stats: DetectStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> DetectStats {
        self.stats
    }

    /// Forget all window state (e.g. across a pipeline squash, where the
    /// stream restarts from the recovery point).
    pub fn reset_window(&mut self) {
        self.window.clear();
    }

    /// Process one rename group. `has_pointer(sidx)` reports whether a
    /// pointer for a head is already stored or pending;
    /// `blacklisted(head, tail)` consults the last-arrival filter's ban
    /// list. Returns the pairs detected this step.
    pub fn step(
        &mut self,
        group: &[DetectInst],
        mut has_pointer: impl FnMut(u32) -> bool,
        mut blacklisted: impl FnMut(u32, u32) -> bool,
    ) -> Vec<DetectedPair> {
        // Slide the window: keep at most (scope - group_width) old slots.
        let keep = self.config.scope.saturating_sub(self.group_width);
        if self.window.len() > keep {
            self.window.drain(..self.window.len() - keep);
        }
        let cur_start = self.window.len();
        for inst in group.iter().take(self.group_width) {
            self.window.push(Slot {
                inst: inst.clone(),
                head: false,
                tail: false,
            });
        }
        let n = self.window.len();

        // Direct register dependences within the window: deps[j] lists the
        // window positions whose destination feeds j (last writer per reg).
        let mut last_writer: [Option<usize>; Reg::NUM] = [None; Reg::NUM];
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)] // j indexes two structures
        for j in 0..n {
            for src in &self.window[j].inst.srcs {
                if let Some(i) = last_writer[src.index()] {
                    if !deps[j].contains(&i) {
                        deps[j].push(i);
                    }
                }
            }
            if let Some(d) = self.window[j].inst.dst {
                last_writer[d.index()] = Some(j);
            }
        }

        // Transitive reachability (ancestor sets) for precise cycle mode.
        let reach: Vec<u32> = {
            let mut r = vec![0u32; n];
            for j in 0..n {
                for &i in &deps[j] {
                    r[j] |= r[i] | (1 << i);
                }
            }
            r
        };

        let mut out = Vec::new();

        // --- Dependent-MOP pass ---
        // Each column proposes its first eligible row; the priority decoder
        // then resolves rows claimed by several columns in favor of the
        // oldest column, and losers forgo this step.
        let mut proposals: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            let col = &self.window[i];
            if col.head || !col.inst.is_valuegen || has_pointer(col.inst.sidx) {
                continue;
            }
            // A tail may head a further link only when chaining (>2-wide
            // MOPs) is enabled.
            if col.tail && self.config.max_mop_size <= 2 {
                continue;
            }
            // Rows in the previous group were already examined last step.
            let row_begin = (i + 1).max(if i < cur_start { cur_start } else { i + 1 });
            let mut mark_seen = (i + 1..row_begin).any(|j| deps[j].contains(&i));
            for j in row_begin..n {
                if !deps[j].contains(&i) {
                    continue;
                }
                let first_mark = !mark_seen;
                mark_seen = true;
                let row = &self.window[j];
                if row.head || row.tail || !row.inst.is_candidate {
                    continue;
                }
                if blacklisted(col.inst.sidx, row.inst.sidx) {
                    continue;
                }
                let n_src_operands = row.inst.srcs.len();
                let cycle_ok = match self.config.cycle_detection {
                    CycleDetection::Heuristic => n_src_operands <= 1 || first_mark,
                    CycleDetection::Precise => {
                        // A deadlock needs some k strictly between i and j
                        // that descends from i and feeds j.
                        !((i + 1..j).any(|k| reach[k] & (1 << i) != 0 && reach[j] & (1 << k) != 0))
                    }
                };
                if !cycle_ok {
                    self.stats.cycle_rejects += 1;
                    continue;
                }
                if !self.src_limit_ok(i, j) {
                    self.stats.src_limit_rejects += 1;
                    continue;
                }
                match self.flow_between(i, j) {
                    Some(_) => {}
                    None => {
                        self.stats.flow_rejects += 1;
                        continue;
                    }
                }
                proposals.push((i, j));
                break;
            }
        }
        let mut row_taken = vec![false; n];
        for (i, j) in proposals {
            if row_taken[j] {
                continue; // priority decoder: an older column claimed it
            }
            // An instruction claimed as a tail earlier this step may not
            // also head a pair (unless >2-wide MOP chains are enabled).
            if self.window[i].tail && self.config.max_mop_size <= 2 {
                continue;
            }
            row_taken[j] = true;
            self.window[i].head = true;
            self.window[j].tail = true;
            let control = self.flow_between(i, j).expect("checked above");
            let head = &self.window[i].inst;
            let tail = &self.window[j].inst;
            out.push(DetectedPair {
                head_sidx: head.sidx,
                head_line: head.line_addr,
                pointer: MopPointer::new((j - i) as u8, control, tail.sidx),
                independent: false,
            });
            self.stats.dependent_pairs += 1;
        }

        // --- Independent-MOP pass (Section 5.4.1) ---
        if self.config.group_independent {
            // Source origins: window producer position or the external
            // logical register.
            #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
            enum Origin {
                Window(usize),
                External(Reg),
            }
            let mut origins: Vec<Vec<Origin>> = vec![Vec::new(); n];
            let mut lw: [Option<usize>; Reg::NUM] = [None; Reg::NUM];
            #[allow(clippy::needless_range_loop)] // j indexes two structures
            for j in 0..n {
                for src in &self.window[j].inst.srcs {
                    let o = match lw[src.index()] {
                        Some(i) => Origin::Window(i),
                        None => Origin::External(*src),
                    };
                    if !origins[j].contains(&o) {
                        origins[j].push(o);
                    }
                }
                origins[j].sort();
                if let Some(d) = self.window[j].inst.dst {
                    lw[d.index()] = Some(j);
                }
            }
            for i in 0..n {
                let c = &self.window[i];
                if c.head || c.tail || !c.inst.is_candidate || has_pointer(c.inst.sidx) {
                    continue;
                }
                // Only pair across the frontier once, like the dependent
                // pass: previous-group columns consider current-group rows.
                let row_begin = (i + 1).max(if i < cur_start { cur_start } else { i + 1 });
                for j in row_begin..n {
                    let r = &self.window[j];
                    if r.head || r.tail || !r.inst.is_candidate {
                        continue;
                    }
                    if origins[i] != origins[j] || blacklisted(c.inst.sidx, r.inst.sidx) {
                        continue;
                    }
                    let Some(control) = self.flow_between(i, j) else {
                        continue;
                    };
                    out.push(DetectedPair {
                        head_sidx: c.inst.sidx,
                        head_line: c.inst.line_addr,
                        pointer: MopPointer::new((j - i) as u8, control, r.inst.sidx)
                            .independent(),
                        independent: true,
                    });
                    self.stats.independent_pairs += 1;
                    self.window[i].head = true;
                    self.window[j].tail = true;
                    break;
                }
            }
        }
        out
    }

    /// Check the merged source-tag count against the wakeup-array limit:
    /// the union of both instructions' sources, minus the tail's dependence
    /// on the head (which becomes the internal MOP edge).
    fn src_limit_ok(&self, i: usize, j: usize) -> bool {
        let Some(limit) = self.max_srcs else {
            return true;
        };
        let head = &self.window[i].inst;
        let tail = &self.window[j].inst;
        let mut union: Vec<Reg> = head.srcs.clone();
        for s in &tail.srcs {
            if Some(*s) == head.dst {
                continue; // internal head->tail edge, no tag needed
            }
            if !union.contains(s) {
                union.push(*s);
            }
        }
        union.len() <= limit
    }

    /// Control-flow legality between window positions `i` and `j`
    /// (Section 5.1.3): at most one taken direct transfer, no taken
    /// indirect transfers, offset within the 3-bit pointer range. Returns
    /// the control bit, or `None` when the span is not encodable.
    fn flow_between(&self, i: usize, j: usize) -> Option<bool> {
        let offset = j - i;
        if offset == 0 || offset > MopPointer::MAX_OFFSET as usize || offset >= self.config.scope {
            return None;
        }
        let mut taken_direct = 0;
        for k in i..j {
            match self.window[k].inst.ctrl_out {
                CtrlOut::FallThrough => {}
                CtrlOut::TakenDirect => taken_direct += 1,
                CtrlOut::TakenIndirect => return None,
            }
        }
        (taken_direct <= 1).then_some(taken_direct == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_isa::{Opcode, StaticInst};

    fn di(sidx: u32, inst: StaticInst) -> DetectInst {
        DetectInst::from_static(sidx, &inst, false, 0x40)
    }

    fn det() -> MopDetector {
        MopDetector::new(MopConfig::default(), None, 4)
    }

    fn no_ptr(_: u32) -> bool {
        false
    }
    fn no_bl(_: u32, _: u32) -> bool {
        false
    }

    fn r(n: u8) -> Reg {
        Reg::int(n)
    }

    #[test]
    fn pairs_simple_dependent_chain() {
        // add r1 <- ...; sub r2 <- r1 : classic head/tail.
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::alui(Opcode::Subi, r(2), r(1), 1)),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].head_sidx, 0);
        assert_eq!(pairs[0].pointer.tail_sidx, 1);
        assert_eq!(pairs[0].pointer.offset, 1);
        assert!(!pairs[0].pointer.control);
        assert!(!pairs[0].independent);
    }

    #[test]
    fn figure4_example_from_gzip() {
        // The paper's Figure 5 code: 1: add r1; 2: lw r4 <- 0(r1);
        // 3: sub r5 <- r1, 1; 4: bez r5. Expected MOP: (1, 3); the load is
        // not a candidate; the branch should pair with nothing else (tail
        // of nothing — it's the consumer of 3, but 3 is already a tail).
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::load(r(4), 0, r(1))),
            di(2, StaticInst::alui(Opcode::Subi, r(5), r(1), 1)),
            di(3, StaticInst::branch(Opcode::Beqz, r(5), 0)),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].head_sidx, pairs[0].pointer.tail_sidx), (0, 2));
        assert_eq!(pairs[0].pointer.offset, 2);
    }

    #[test]
    fn heuristic_rejects_two_source_tail_across_marks() {
        // Figure 9 step n: i0 -> i1 (invalid row: load), i0 -> i2 where i2
        // has two sources. The mark "2" is not the first in the column, so
        // the pairing is rejected.
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::load(r(2), 0, r(1))),
            di(2, StaticInst::add(r(3), r(1), r(2))),
            di(3, StaticInst::nop()),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        assert!(pairs.is_empty(), "cycle heuristic must reject: {pairs:?}");
        assert_eq!(d.stats().cycle_rejects, 1);
    }

    #[test]
    fn two_source_tail_ok_when_first_mark() {
        // i1 reads i0 and an external register; no earlier mark in the
        // column, so "2" is selectable.
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::add(r(3), r(1), r(8))),
        ];
        let mut d = det();
        assert_eq!(d.step(&g, no_ptr, no_bl).len(), 1);
    }

    #[test]
    fn precise_mode_groups_where_heuristic_fears_a_cycle() {
        // i0 -> i1 (load, not groupable), i0 -> i2, i2 also reads i1's
        // output? No: make i2 read i0 and an *external* register. The
        // heuristic rejects (mark 2, not first); precise detection sees no
        // k between with i0=>k and k=>i2 both, because the load's value
        // does not feed i2.
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::load(r(2), 0, r(1))),
            di(2, StaticInst::add(r(3), r(1), r(7))),
        ];
        let mut h = MopDetector::new(MopConfig::default(), None, 4);
        assert!(h.step(&g, no_ptr, no_bl).is_empty());

        let cfg = MopConfig {
            cycle_detection: CycleDetection::Precise,
            ..MopConfig::default()
        };
        let mut p = MopDetector::new(cfg, None, 4);
        let pairs = p.step(&g, no_ptr, no_bl);
        assert_eq!(pairs.len(), 1, "precise mode recovers the opportunity");
    }

    #[test]
    fn precise_mode_still_rejects_true_cycles() {
        // i0 -> i1 (candidate consumer), i1 -> i2, i0 -> i2: grouping
        // (i0, i2) would deadlock with i1 in the middle (Figure 8a).
        // Column i0's first eligible row is i1 though — so force i1
        // ineligible by making it a load *that feeds i2*.
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::load(r(2), 0, r(1))),
            di(2, StaticInst::add(r(3), r(1), r(2))),
        ];
        let cfg = MopConfig {
            cycle_detection: CycleDetection::Precise,
            ..MopConfig::default()
        };
        let mut p = MopDetector::new(cfg, None, 4);
        assert!(p.step(&g, no_ptr, no_bl).is_empty());
        assert_eq!(p.stats().cycle_rejects, 1);
    }

    #[test]
    fn priority_decoder_resolves_conflicts_oldest_first() {
        // Figure 9 step n+1: instructions 3 and 4 both select 5; the
        // decoder keeps (3,5) and 4 loses this step.
        let g1 = vec![
            di(0, StaticInst::nop()),
            di(1, StaticInst::nop()),
            di(2, StaticInst::addi(r(1), r(9), 1)),
            di(3, StaticInst::addi(r(2), r(8), 1)),
        ];
        let g2 = vec![di(4, StaticInst::add(r(3), r(1), r(2)))];
        let mut d = det();
        assert!(d.step(&g1, no_ptr, no_bl).is_empty());
        let pairs = d.step(&g2, no_ptr, no_bl);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].head_sidx, 2, "older column wins the row");
    }

    #[test]
    fn cam_two_source_limit_rejects_wide_unions() {
        // head reads r8, r9; tail reads head and r7 -> union {r8, r9, r7}.
        let g = vec![
            di(0, StaticInst::add(r(1), r(8), r(9))),
            di(1, StaticInst::add(r(2), r(1), r(7))),
        ];
        let mut cam = MopDetector::new(MopConfig::default(), Some(2), 4);
        assert!(cam.step(&g, no_ptr, no_bl).is_empty());
        assert_eq!(cam.stats().src_limit_rejects, 1);
        let mut wor = MopDetector::new(MopConfig::default(), None, 4);
        assert_eq!(wor.step(&g, no_ptr, no_bl).len(), 1);
    }

    #[test]
    fn pointer_spans_one_taken_direct_branch() {
        let mut head = di(0, StaticInst::addi(r(1), r(9), 1));
        head.ctrl_out = CtrlOut::FallThrough;
        let mut br = di(1, StaticInst::branch(Opcode::Bnez, r(8), 0));
        br.ctrl_out = CtrlOut::TakenDirect;
        let tail = di(7, StaticInst::alui(Opcode::Subi, r(2), r(1), 3));
        let g = vec![head, br, tail];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].pointer.control, "control bit set across taken branch");
    }

    #[test]
    fn pointer_rejected_across_indirect_or_two_taken() {
        let mk = |ctrls: [CtrlOut; 2]| {
            let mut a = di(0, StaticInst::addi(r(1), r(9), 1));
            a.ctrl_out = ctrls[0];
            let mut b = di(1, StaticInst::branch(Opcode::Bnez, r(8), 0));
            b.ctrl_out = ctrls[1];
            let c = di(2, StaticInst::alui(Opcode::Subi, r(2), r(1), 3));
            vec![a, b, c]
        };
        let mut d = det();
        assert!(d
            .step(&mk([CtrlOut::TakenIndirect, CtrlOut::FallThrough]), no_ptr, no_bl)
            .is_empty());
        let mut d = det();
        assert!(d
            .step(&mk([CtrlOut::TakenDirect, CtrlOut::TakenDirect]), no_ptr, no_bl)
            .is_empty());
        assert!(d.stats().flow_rejects >= 1);
    }

    #[test]
    fn cross_group_pairing_within_scope() {
        // Head in group n, tail in group n+1: the 8-instruction scope
        // spans two 4-wide groups.
        let g1 = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::nop()),
            di(2, StaticInst::nop()),
            di(3, StaticInst::nop()),
        ];
        let g2 = vec![di(4, StaticInst::alui(Opcode::Subi, r(2), r(1), 1))];
        let mut d = det();
        assert!(d.step(&g1, no_ptr, no_bl).is_empty());
        let pairs = d.step(&g2, no_ptr, no_bl);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].pointer.offset, 4);
    }

    #[test]
    fn out_of_scope_dependence_not_paired() {
        let g1 = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::nop()),
            di(2, StaticInst::nop()),
            di(3, StaticInst::nop()),
        ];
        let g2 = vec![
            di(4, StaticInst::nop()),
            di(5, StaticInst::nop()),
            di(6, StaticInst::nop()),
            di(7, StaticInst::nop()),
        ];
        let g3 = vec![di(8, StaticInst::alui(Opcode::Subi, r(2), r(1), 1))];
        let mut d = det();
        assert!(d.step(&g1, no_ptr, no_bl).is_empty());
        assert!(d.step(&g2, no_ptr, no_bl).is_empty());
        assert!(
            d.step(&g3, no_ptr, no_bl).is_empty(),
            "producer slid out of the 8-instruction window"
        );
    }

    #[test]
    fn independent_mops_pair_identical_sources() {
        // Two adds reading the same external registers, no dependence.
        let g = vec![
            di(0, StaticInst::add(r(1), r(8), r(9))),
            di(1, StaticInst::add(r(2), r(8), r(9))),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].independent);
    }

    #[test]
    fn independent_pass_runs_after_dependent_pass() {
        // i0 -> i1 dependent; i2, i3 independent with same sources.
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::alui(Opcode::Subi, r(2), r(1), 1)),
            di(2, StaticInst::add(r(3), r(7), r(8))),
            di(3, StaticInst::add(r(4), r(7), r(8))),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        assert_eq!(pairs.len(), 2);
        assert!(!pairs[0].independent);
        assert!(pairs[1].independent);
    }

    #[test]
    fn independent_disabled_by_config() {
        let cfg = MopConfig {
            group_independent: false,
            ..MopConfig::default()
        };
        let g = vec![
            di(0, StaticInst::add(r(1), r(8), r(9))),
            di(1, StaticInst::add(r(2), r(8), r(9))),
        ];
        let mut d = MopDetector::new(cfg, None, 4);
        assert!(d.step(&g, no_ptr, no_bl).is_empty());
    }

    #[test]
    fn same_register_different_producer_is_not_independent_pair() {
        // Both read r8, but i1 redefines r8 in between.
        let g = vec![
            di(0, StaticInst::mov(r(1), r(8))),
            di(1, StaticInst::addi(r(8), r(8), 1)),
            di(2, StaticInst::mov(r(2), r(8))),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        // (1,2) is a *dependent* pair (i2 reads i1's r8). i0 pairs with
        // nothing independently because origins differ.
        assert_eq!(pairs.len(), 1);
        assert!(!pairs[0].independent);
        assert_eq!(pairs[0].head_sidx, 1);
    }

    #[test]
    fn blacklist_suppresses_pair_and_picks_alternative() {
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::alui(Opcode::Subi, r(2), r(1), 1)),
            di(2, StaticInst::alui(Opcode::Subi, r(3), r(1), 2)),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, |h, t| (h, t) == (0, 1));
        assert_eq!(pairs.len(), 1);
        assert_eq!(
            pairs[0].pointer.tail_sidx, 2,
            "alternative tail chosen per Figure 12(c)"
        );
    }

    #[test]
    fn existing_pointer_suppresses_redetection() {
        let g = vec![
            di(0, StaticInst::addi(r(1), r(9), 1)),
            di(1, StaticInst::alui(Opcode::Subi, r(2), r(1), 1)),
        ];
        let mut d = det();
        assert!(d.step(&g, |s| s == 0, no_bl).is_empty());
    }

    #[test]
    fn value_dead_heads_do_not_pair() {
        // A store (non-value-generating) cannot head a dependent MOP.
        let g = vec![
            di(0, StaticInst::store(r(4), 0, r(5))),
            di(1, StaticInst::addi(r(2), r(9), 1)),
        ];
        let mut d = det();
        let pairs = d.step(&g, no_ptr, no_bl);
        assert!(pairs.iter().all(|p| p.independent || p.head_sidx != 0));
    }

    #[test]
    fn window_reset_forgets_producers() {
        let g1 = vec![di(0, StaticInst::addi(r(1), r(9), 1))];
        let g2 = vec![di(1, StaticInst::alui(Opcode::Subi, r(2), r(1), 1))];
        let mut d = det();
        assert!(d.step(&g1, no_ptr, no_bl).is_empty());
        d.reset_window();
        assert!(d.step(&g2, no_ptr, no_bl).is_empty());
    }
}

//! Scheduler and macro-op formation configuration (Section 6.2's
//! scheduler configurations).


/// Which scheduling-loop model the issue queue runs (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Ideally pipelined scheduling logic — "conceptually equivalent to
    /// conventional atomic scheduling with one extra pipeline stage".
    /// Dependents of an `L`-cycle op may be selected `L` cycles after it.
    Base,
    /// Pipelined wakeup and select: a one-cycle bubble between a
    /// single-cycle instruction and its dependents (`max(L, 2)`).
    TwoCycle,
    /// Macro-op scheduling: 2-cycle scheduling of 2-cycle MOPs. Ungrouped
    /// instructions behave as in `TwoCycle`; consumers of a MOP tail
    /// execute consecutively (Figure 5).
    MacroOp,
    /// Select-free scheduling, Squash Dep recovery (Brown et al.):
    /// wakeup broadcasts speculatively; collision victims squash their
    /// dependents' wakeups so no pileup victims exist.
    SelectFreeSquashDep,
    /// Select-free scheduling, Scoreboard recovery: mis-woken dependents
    /// issue as pileup victims, are caught by a register scoreboard in the
    /// register-read stage and selectively replayed.
    SelectFreeScoreboard,
    /// Speculative wakeup (Stark, Brown and Patt): wakeup fires one
    /// cycle early — as soon as an instruction's *grandparents* have
    /// issued — speculating that the parents will be selected promptly.
    /// The select stage verifies the parents really issued; a failed
    /// verification wastes the issue slot and the instruction retries.
    SpeculativeWakeup,
}

impl SchedulerKind {
    /// `true` for the two select-free variants.
    pub fn is_select_free(self) -> bool {
        matches!(
            self,
            SchedulerKind::SelectFreeSquashDep | SchedulerKind::SelectFreeScoreboard
        )
    }

    /// `true` for every scheduler that broadcasts tags speculatively at
    /// wakeup time rather than at grant (both select-free variants and
    /// speculative wakeup).
    pub fn broadcasts_at_wakeup(self) -> bool {
        self.is_select_free() || self == SchedulerKind::SpeculativeWakeup
    }

    /// Wakeup-to-select latency floor for dependents of an issued entry:
    /// `1` when dependents of single-cycle ops can be selected in the next
    /// cycle, `2` for pipelined (2-cycle) scheduling loops.
    pub fn wakeup_floor(self) -> u32 {
        match self {
            SchedulerKind::Base
            | SchedulerKind::SelectFreeSquashDep
            | SchedulerKind::SelectFreeScoreboard
            | SchedulerKind::SpeculativeWakeup => 1,
            SchedulerKind::TwoCycle | SchedulerKind::MacroOp => 2,
        }
    }
}

/// Wakeup-array style (Section 2.2). The styles schedule identically; they
/// differ in how many distinct source tags one issue-queue entry can track,
/// which constrains MOP detection (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeupStyle {
    /// CAM-style with two tag comparators per entry: a MOP's merged source
    /// set may not exceed two tags.
    CamTwoSource,
    /// Wired-OR-style dependence vectors: no source-count restriction.
    WiredOr,
}

impl WakeupStyle {
    /// Maximum number of distinct source tags per issue-queue entry, if
    /// limited.
    pub fn max_entry_sources(self) -> Option<usize> {
        match self {
            WakeupStyle::CamTwoSource => Some(2),
            WakeupStyle::WiredOr => None,
        }
    }
}

/// How MOP detection avoids dependence cycles (Section 5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleDetection {
    /// The paper's conservative heuristic: a dependence mark of "2" may
    /// only be chosen when it is the first mark in its column.
    Heuristic,
    /// Precise in-window cycle detection (tracks transitive dependences);
    /// used for the >90 %-of-opportunities ablation.
    Precise,
}

/// Macro-op detection/formation parameters (Sections 4 and 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MopConfig {
    /// Maximum instructions per MOP. The paper evaluates 2 ("2x MOP");
    /// larger sizes implement its future-work configurations and require
    /// [`WakeupStyle::WiredOr`].
    pub max_mop_size: usize,
    /// Detection scope in instructions (8 = two rename groups on the
    /// 4-wide machine).
    pub scope: usize,
    /// Cycle-avoidance policy.
    pub cycle_detection: CycleDetection,
    /// Cycles between examining dependences and MOP pointers becoming
    /// usable (3 in the paper's optimistic setting; 100 pessimistic).
    pub detection_delay: u64,
    /// Group independent instructions with identical/no sources
    /// (Section 5.4.1).
    pub group_independent: bool,
    /// Delete pointers whose tail supplied the last-arriving operand and
    /// blacklist the pair (Section 5.4.2).
    pub last_arrival_filter: bool,
}

impl Default for MopConfig {
    fn default() -> MopConfig {
        MopConfig {
            max_mop_size: 2,
            scope: 8,
            cycle_detection: CycleDetection::Heuristic,
            detection_delay: 3,
            group_independent: true,
            last_arrival_filter: true,
        }
    }
}

/// Full scheduler configuration handed to the issue queue and formation
/// logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedConfig {
    /// Scheduling-loop model.
    pub kind: SchedulerKind,
    /// Wakeup-array style.
    pub wakeup: WakeupStyle,
    /// Issue-queue capacity in entries; `None` models the paper's
    /// "unrestricted" queue.
    pub queue_entries: Option<usize>,
    /// Issue width (instructions selected per cycle).
    pub issue_width: usize,
    /// Functional-unit pool sizes indexed by [`mos_isa::FuKind::index`]:
    /// Table 1's 4 int ALUs, 2 int MUL/DIV, 2 FP ALUs, 2 FP MUL/DIV,
    /// 2 memory ports.
    pub fu_counts: [usize; 5],
    /// Cycles after issue until an entry's execution is known good and the
    /// entry can be released (covers the load-miss discovery window).
    pub confirm_window: u32,
    /// Additional wakeup delay applied when a replayed instruction is
    /// rescheduled (Table 1's "2-cycle penalty").
    pub replay_penalty: u32,
    /// Scheduling latency assumed for loads (address generation + DL1 hit).
    pub load_sched_latency: u32,
    /// Macro-op parameters (used when `kind == MacroOp`).
    pub mop: MopConfig,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            kind: SchedulerKind::Base,
            wakeup: WakeupStyle::WiredOr,
            queue_entries: Some(32),
            issue_width: 4,
            fu_counts: [4, 2, 2, 2, 2],
            confirm_window: 8,
            replay_penalty: 2,
            load_sched_latency: 3,
            mop: MopConfig::default(),
        }
    }
}

impl SchedConfig {
    /// `true` when macro-op formation is active.
    pub fn mops_enabled(&self) -> bool {
        self.kind == SchedulerKind::MacroOp
    }

    /// Effective per-entry source-tag limit for MOP detection.
    pub fn max_entry_sources(&self) -> Option<usize> {
        self.wakeup.max_entry_sources()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_floors() {
        assert_eq!(SchedulerKind::Base.wakeup_floor(), 1);
        assert_eq!(SchedulerKind::TwoCycle.wakeup_floor(), 2);
        assert_eq!(SchedulerKind::MacroOp.wakeup_floor(), 2);
        assert_eq!(SchedulerKind::SelectFreeSquashDep.wakeup_floor(), 1);
    }

    #[test]
    fn cam_limits_sources() {
        assert_eq!(WakeupStyle::CamTwoSource.max_entry_sources(), Some(2));
        assert_eq!(WakeupStyle::WiredOr.max_entry_sources(), None);
    }

    #[test]
    fn default_matches_table1() {
        let c = SchedConfig::default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.fu_counts[mos_isa::FuKind::IntAlu.index()], 4);
        assert_eq!(c.fu_counts[mos_isa::FuKind::MemPort.index()], 2);
        assert_eq!(c.mop.max_mop_size, 2);
        assert_eq!(c.mop.scope, 8);
    }
}

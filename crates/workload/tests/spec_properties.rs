//! Measured properties of every synthetic benchmark model: the knobs a
//! spec declares must actually manifest in the generated traces.

use std::collections::HashMap;

use mos_isa::{InstClass, Reg, TraceSource};
use mos_workload::spec2000;

const N: usize = 60_000;

fn class_fracs(name: &str) -> HashMap<InstClass, f64> {
    let spec = spec2000::by_name(name).expect("known benchmark");
    let mut t = spec.trace(42);
    let p = t.program().clone();
    let mut counts: HashMap<InstClass, usize> = HashMap::new();
    for d in t.by_ref().take(N) {
        *counts.entry(p.inst(d.sidx).expect("valid").class()).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / N as f64))
        .collect()
}

#[test]
fn every_spec_tracks_its_declared_mix() {
    for spec in spec2000::all() {
        let f = class_fracs(spec.name);
        let load = f.get(&InstClass::Load).copied().unwrap_or(0.0);
        let store = f.get(&InstClass::Store).copied().unwrap_or(0.0);
        let branch = f.get(&InstClass::CondBranch).copied().unwrap_or(0.0);
        assert!(
            (load - spec.mix.load).abs() < 0.08,
            "{}: load {:.3} vs declared {:.3}",
            spec.name,
            load,
            spec.mix.load
        );
        assert!(
            (store - spec.mix.store).abs() < 0.06,
            "{}: store {:.3} vs declared {:.3}",
            spec.name,
            store,
            spec.mix.store
        );
        assert!(
            (branch - spec.mix.branch).abs() < 0.06,
            "{}: branch {:.3} vs declared {:.3}",
            spec.name,
            branch,
            spec.mix.branch
        );
    }
}

#[test]
fn valuegen_fraction_matches_figure6_header() {
    let paper = [
        ("bzip", 49.2),
        ("crafty", 50.9),
        ("eon", 27.8),
        ("gap", 48.7),
        ("gcc", 37.4),
        ("gzip", 56.3),
        ("mcf", 40.2),
        ("parser", 47.5),
        ("perl", 42.7),
        ("twolf", 47.7),
        ("vortex", 37.6),
        ("vpr", 44.7),
    ];
    for (name, pct) in paper {
        let spec = spec2000::by_name(name).expect("known");
        let mut t = spec.trace(42);
        let p = t.program().clone();
        let vg = t
            .by_ref()
            .take(N)
            .filter(|d| p.inst(d.sidx).expect("valid").is_value_generating_candidate())
            .count() as f64
            / N as f64;
        assert!(
            (100.0 * vg - pct).abs() < 8.0,
            "{name}: measured {:.1}% vs paper {pct}%",
            100.0 * vg
        );
    }
}

/// Mean dependence depth of 128-instruction windows (the ROB size): what
/// an out-of-order core can actually see. `edge_floor` = 1 models atomic
/// scheduling, 2 models the pipelined 2-cycle loop.
fn mean_window_depth(name: &str, edge_floor: u64) -> f64 {
    let spec = spec2000::by_name(name).expect("known");
    let mut t = spec.trace(42);
    let p = t.program().clone();
    let insts: Vec<_> = t.by_ref().take(30_000).collect();
    let window = 128;
    let mut sum = 0.0;
    let mut count = 0;
    for start in (0..insts.len().saturating_sub(window)).step_by(64) {
        let mut lw: HashMap<Reg, (usize, InstClass)> = HashMap::new();
        let mut done = vec![0u64; window];
        for (k, d) in insts[start..start + window].iter().enumerate() {
            let inst = p.inst(d.sidx).expect("valid");
            let mut r = 0u64;
            for s in inst.src_regs() {
                if let Some(&(w, cls)) = lw.get(&s) {
                    let lat = match cls {
                        InstClass::Load => 3,
                        c => u64::from(c.exec_latency()),
                    };
                    r = r.max(done[w] + lat.max(edge_floor));
                }
            }
            done[k] = r;
            if let Some(dst) = inst.dst() {
                lw.insert(dst, (k, inst.class()));
            }
        }
        sum += *done.iter().max().expect("nonempty") as f64;
        count += 1;
    }
    sum / count as f64
}

#[test]
fn window_scale_chains_make_sensitive_specs_scheduler_bound() {
    // A 4-wide machine needs 32 cycles for a 128-instruction window; the
    // scheduler-sensitive five must have window dependence depths on that
    // order, and doubling single-cycle edges must bite them hard.
    for name in ["gap", "gzip", "parser", "twolf", "vpr"] {
        let d1 = mean_window_depth(name, 1);
        let d2 = mean_window_depth(name, 2);
        assert!(d1 > 20.0, "{name}: window depth {d1:.1} too shallow");
        assert!(
            d2 / d1 > 1.5,
            "{name}: 2-cycle edges must deepen the window ({d1:.1} -> {d2:.1})"
        );
    }
    // The insensitive extremes are shallower relative to gap.
    let gap = mean_window_depth("gap", 1);
    for name in ["vortex", "eon"] {
        let d = mean_window_depth(name, 1);
        assert!(
            d < gap * 1.1,
            "{name}: window depth {d:.1} should not exceed gap's {gap:.1}"
        );
    }
}

#[test]
fn mispredict_sensitive_branch_mix() {
    // Specs with more random branches must have more unpredictable
    // branch streams: estimate via outcome entropy of repeated branches.
    let wobble = |name: &str| {
        let spec = spec2000::by_name(name).expect("known");
        let mut t = spec.trace(42);
        let p = t.program().clone();
        let mut flips: HashMap<u32, (u64, u64)> = HashMap::new(); // (changes, total)
        let mut last: HashMap<u32, bool> = HashMap::new();
        for d in t.by_ref().take(N) {
            if p.inst(d.sidx).expect("valid").is_cond_branch() {
                let e = flips.entry(d.sidx).or_default();
                if let Some(&prev) = last.get(&d.sidx) {
                    e.1 += 1;
                    if prev != d.taken {
                        e.0 += 1;
                    }
                }
                last.insert(d.sidx, d.taken);
            }
        }
        let (c, t): (u64, u64) = flips.values().fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        c as f64 / t.max(1) as f64
    };
    let crafty = wobble("crafty");
    let gap = wobble("gap");
    assert!(
        crafty > gap,
        "crafty ({crafty:.3}) must flip outcomes more than gap ({gap:.3})"
    );
}

#[test]
fn memory_footprints_scale_with_working_set() {
    let distinct_lines = |name: &str| {
        let spec = spec2000::by_name(name).expect("known");
        let mut t = spec.trace(42);
        let mut lines = std::collections::HashSet::new();
        for d in t.by_ref().take(N) {
            if let Some(a) = d.eff_addr {
                lines.insert(a & !63);
            }
        }
        lines.len()
    };
    let mcf = distinct_lines("mcf");
    let gzip = distinct_lines("gzip");
    assert!(
        mcf > gzip * 4,
        "mcf ({mcf} lines) must roam far more memory than gzip ({gzip})"
    );
}

#[test]
fn different_seeds_give_different_but_valid_traces() {
    let spec = spec2000::by_name("perl").expect("known");
    let a: Vec<_> = spec.trace(1).take(2_000).collect();
    let b: Vec<_> = spec.trace(2).take(2_000).collect();
    assert_ne!(a, b, "different seeds must differ");
    // But the static program for a given seed is shared by its walks.
    let prog = spec.build(7);
    let w1: Vec<_> = prog.walk(1).take(500).collect();
    let w2: Vec<_> = prog.walk(1).take(500).collect();
    assert_eq!(w1, w2);
}

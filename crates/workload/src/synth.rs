//! Synthetic static-program generation and the stochastic walker.
//!
//! [`SyntheticProgram::generate`] expands a [`WorkloadSpec`] into real
//! static code: one large loop body whose instruction kinds follow the
//! spec's mix, with register dataflow wired *circularly* so that a
//! consumer at body position `i` reading distance `d` reaches the
//! producer `d` dynamic instructions earlier even across iterations;
//! skip-branch diamonds, leaf-function calls, an inner-loop back edge and
//! an outer jump complete the control structure. Because the body repeats,
//! PCs recur — branch predictors learn, I-cache lines persist, and MOP
//! pointers get the reuse Section 5.1.2 relies on.
//!
//! [`SyntheticProgram::walk`] yields the committed path: branch outcomes
//! come from per-slot models (loop trip counts, learnable patterns, or
//! data-dependent Bernoulli draws) and memory addresses from per-slot
//! stride/random generators over the spec's working set. The walk is
//! deterministic in the seed, so different scheduler configurations see
//! identical streams.

use std::sync::Arc;

use mos_isa::{DynInst, Opcode, Program, Reg, StaticInst, TraceSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec2000::WorkloadSpec;

/// Byte address where the synthetic data region starts.
const HEAP_BASE: u64 = 0x1000_0000;
/// Integer register pool used for rotating value producers.
const INT_POOL: std::ops::Range<u8> = 1..26;
/// FP register pool.
const FP_POOL: std::ops::Range<u8> = 1..26;
/// Register holding the data-region base (never reassigned).
const BASE_REG: u8 = 29;

#[derive(Debug, Clone)]
enum OutcomeModel {
    /// Inner-loop back edge: taken `trip - 1` out of every `trip`.
    Loop { trip: u32 },
    /// Strongly biased branch (error-check/guard style): almost always
    /// one direction — what dominates real integer code.
    Bias { taken: bool },
    /// Repeating pattern: taken once per `period` (a bimodal predictor
    /// mispredicts ~1/period of the time).
    Pattern { period: u32 },
    /// Data-dependent branch: taken with probability `p`.
    Random { p: f64 },
}

#[derive(Debug, Clone)]
enum AddrModel {
    /// Streaming: `base + (k * stride) % span` on the k-th execution.
    Stride { base: u64, stride: u64, span: u64 },
    /// Pointer-chase-like: uniform over `base..base + span`.
    Random { base: u64, span: u64 },
}

#[derive(Debug, Clone, Default)]
enum SlotModel {
    #[default]
    None,
    Branch(OutcomeModel),
    Mem(AddrModel),
}

/// A generated synthetic program: static code plus the per-instruction
/// behavioural models the walker consults.
#[derive(Debug, Clone)]
pub struct SyntheticProgram {
    program: Arc<Program>,
    models: Arc<Vec<SlotModel>>,
    body_top: u32,
}

impl SyntheticProgram {
    /// Generate the program for `spec`, deterministically from `seed`.
    pub fn generate(spec: &WorkloadSpec, seed: u64) -> SyntheticProgram {
        Generator::new(spec, seed).build()
    }

    /// The static code.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The shared static-code allocation (lets callers check whether two
    /// programs came from the same cache entry).
    pub fn program_arc(&self) -> Arc<Program> {
        Arc::clone(&self.program)
    }

    /// Start a committed-path walk (deterministic in `seed`).
    pub fn walk(&self, seed: u64) -> SynthTrace {
        SynthTrace {
            program: Arc::clone(&self.program),
            models: Arc::clone(&self.models),
            rng: SmallRng::seed_from_u64(seed),
            pc: self.program.entry(),
            call_stack: Vec::new(),
            counters: vec![0; self.program.len()],
            body_top: self.body_top,
        }
    }
}

struct Generator<'a> {
    spec: &'a WorkloadSpec,
    rng: SmallRng,
    program: Program,
    models: Vec<SlotModel>,
    /// Positions (static indices) of integer value producers, in order.
    int_producers: Vec<u32>,
    /// The subset that are single-cycle ALU producers (chains through
    /// these are what pipelined scheduling loops hurt).
    alu_producers: Vec<u32>,
    /// Positions of FP value producers.
    fp_producers: Vec<u32>,
    /// Positions of loads (for pointer-chase chaining).
    loads: Vec<u32>,
    /// Rotation counters for leaf-function scratch registers (r27/r28,
    /// f26/f27), kept apart from the body pools.
    fn_int_ordinal: usize,
    fn_fp_ordinal: usize,
    mem_slots: u64,
    /// Body plan (phase A): destination register per body slot.
    plan_dst: Vec<Option<Reg>>,
    /// Body slots with an integer destination, ascending (calls excluded).
    plan_int_slots: Vec<usize>,
    /// The single-cycle ALU subset of `plan_int_slots`.
    plan_alu_slots: Vec<usize>,
    /// Body slots with an FP destination.
    plan_fp_slots: Vec<usize>,
    /// Rotation ordinal of each int-producing body slot.
    plan_int_ord: Vec<usize>,
    /// Rotation ordinal of each fp-producing body slot (aligned with
    /// `plan_fp_slots`).
    plan_fp_ord: Vec<usize>,
    /// Body slots holding loads (for pointer-chase wiring).
    plan_load_slots: Vec<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Alu,
    Load,
    Store,
    Branch,
    Mul,
    Div,
    Fp,
    Call,
}

impl<'a> Generator<'a> {
    fn new(spec: &'a WorkloadSpec, seed: u64) -> Generator<'a> {
        Generator {
            spec,
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_5eed),
            program: Program::new(spec.name),
            models: Vec::new(),
            int_producers: Vec::new(),
            alu_producers: Vec::new(),
            fp_producers: Vec::new(),
            loads: Vec::new(),
            fn_int_ordinal: 0,
            fn_fp_ordinal: 0,
            mem_slots: 0,
            plan_dst: Vec::new(),
            plan_int_slots: Vec::new(),
            plan_alu_slots: Vec::new(),
            plan_fp_slots: Vec::new(),
            plan_int_ord: Vec::new(),
            plan_fp_ord: Vec::new(),
            plan_load_slots: Vec::new(),
        }
    }

    /// Phase A: plan the loop body — sample every slot's kind and assign
    /// destination registers by rotation. With the whole body known,
    /// sources can be wired *circularly* (phase B), so a distance-`d` edge
    /// from an early slot reaches the previous iteration's late slots:
    /// this is what gives the workloads their loop-carried recurrences.
    fn plan_body(&mut self) -> Vec<Kind> {
        let b = self.spec.body_len;
        let mut kinds = Vec::with_capacity(b);
        self.plan_dst = vec![None; b];
        let int_pool: Vec<u8> = INT_POOL.collect();
        let fp_pool: Vec<u8> = FP_POOL.collect();
        let (mut int_ord, mut fp_ord) = (0usize, 0usize);
        for i in 0..b {
            let kind = self.sample_kind();
            kinds.push(kind);
            match kind {
                Kind::Alu | Kind::Load | Kind::Mul | Kind::Div => {
                    let r = Reg::int(int_pool[int_ord % int_pool.len()]);
                    self.plan_dst[i] = Some(r);
                    self.plan_int_slots.push(i);
                    self.plan_int_ord.push(int_ord);
                    if kind == Kind::Alu {
                        self.plan_alu_slots.push(i);
                    }
                    if kind == Kind::Load {
                        self.plan_load_slots.push(i);
                    }
                    int_ord += 1;
                }
                Kind::Fp => {
                    let r = Reg::fp(fp_pool[fp_ord % fp_pool.len()]);
                    self.plan_dst[i] = Some(r);
                    self.plan_fp_slots.push(i);
                    self.plan_fp_ord.push(fp_ord);
                    fp_ord += 1;
                }
                Kind::Store | Kind::Branch | Kind::Call => {}
            }
        }
        kinds
    }

    /// Phase-B circular source lookup: the producer whose backward
    /// dynamic distance from body slot `i` is nearest to (and at least)
    /// `d`, wrapping into the previous iteration, constrained to the
    /// register-rotation live window (24 producers).
    fn circ_int_source(&mut self, i: usize, d: u32, prefer_alu: bool) -> Reg {
        let b = self.spec.body_len;
        let list: &[usize] = if prefer_alu && !self.plan_alu_slots.is_empty() {
            &self.plan_alu_slots
        } else {
            &self.plan_int_slots
        };
        if list.is_empty() {
            return Reg::int(BASE_REG);
        }
        let p_int = self.plan_int_slots.len();
        let d = (d as usize).clamp(1, b.saturating_sub(1));
        // Consumer's position in int-producer ordinal space.
        let cons_ord = self.plan_int_slots.partition_point(|&s| s < i);
        let ord_of = |slot: usize| -> usize {
            let k = self
                .plan_int_slots
                .binary_search(&slot)
                .expect("int slot present");
            self.plan_int_ord[k]
        };
        let mut best: Option<(usize, usize)> = None; // (slot_dist, slot)
        let mut fallback: Option<(usize, usize)> = None;
        for &j in list {
            let slot_dist = (i + b - j - 1) % b + 1; // 1..=b, circular
            let ord = ord_of(j);
            let ord_dist = if j < i {
                cons_ord - ord
            } else {
                cons_ord + p_int - ord
            };
            if ord_dist == 0 || ord_dist > 24 {
                continue; // register overwritten before the consumer reads
            }
            if slot_dist >= d {
                if best.is_none_or(|(bd, _)| slot_dist < bd) {
                    best = Some((slot_dist, j));
                }
            } else if fallback.is_none_or(|(fd, _)| slot_dist > fd) {
                fallback = Some((slot_dist, j));
            }
        }
        match best.or(fallback) {
            Some((_, j)) => self.plan_dst[j].expect("producer has a dst"),
            None => Reg::int(BASE_REG),
        }
    }

    /// Circular FP source (same scheme over the FP rotation). Unlike the
    /// integer side, cross-iteration FP edges are mostly broken — real FP
    /// loop bodies rarely carry recurrences — by reading a loop-invariant
    /// input register instead.
    fn circ_fp_source(&mut self, i: usize, d: u32) -> Reg {
        let b = self.spec.body_len;
        if self.plan_fp_slots.is_empty() {
            return Reg::fp(1);
        }
        let p_fp = self.plan_fp_slots.len();
        let d = (d as usize).clamp(1, b.saturating_sub(1));
        let cons_ord = self.plan_fp_slots.partition_point(|&s| s < i);
        let mut best: Option<(usize, usize)> = None;
        let mut fallback: Option<(usize, usize)> = None;
        for (k, &j) in self.plan_fp_slots.iter().enumerate() {
            let slot_dist = (i + b - j - 1) % b + 1;
            let ord = self.plan_fp_ord[k];
            let ord_dist = if j < i {
                cons_ord - ord
            } else {
                cons_ord + p_fp - ord
            };
            if ord_dist == 0 || ord_dist > 24 {
                continue;
            }
            if slot_dist >= d {
                if best.is_none_or(|(bd, _)| slot_dist < bd) {
                    best = Some((slot_dist, j));
                }
            } else if fallback.is_none_or(|(fd, _)| slot_dist > fd) {
                fallback = Some((slot_dist, j));
            }
        }
        match best.or(fallback) {
            // Cross-iteration FP edges are mostly replaced by a
            // loop-invariant input register: the recurrence that remains
            // is the integer side's, as in real FP loop bodies.
            Some((_, j)) if j >= i && self.rng.random::<f64>() < 0.9 => Reg::fp(28),
            Some((_, j)) => self.plan_dst[j].expect("fp producer has a dst"),
            None => Reg::fp(1),
        }
    }

    fn sample_kind(&mut self) -> Kind {
        let m = &self.spec.mix;
        let x: f64 = self.rng.random();
        let mut acc = m.load;
        if x < acc {
            return Kind::Load;
        }
        acc += m.store;
        if x < acc {
            return Kind::Store;
        }
        acc += m.branch;
        if x < acc {
            return Kind::Branch;
        }
        acc += m.mul;
        if x < acc {
            return Kind::Mul;
        }
        acc += m.div;
        if x < acc {
            return Kind::Div;
        }
        acc += m.fp;
        if x < acc {
            return Kind::Fp;
        }
        acc += m.call;
        if x < acc {
            return Kind::Call;
        }
        Kind::Alu
    }

    /// Sample a consumer->producer distance in instructions.
    fn sample_distance(&mut self) -> u32 {
        let d = &self.spec.distance;
        if self.rng.random::<f64>() < d.short_frac {
            // Geometric with success probability geo_p, support 1..
            let mut n = 1;
            while self.rng.random::<f64>() > d.geo_p && n < 7 {
                n += 1;
            }
            n
        } else {
            self.rng.random_range(8..=d.long_max.max(9))
        }
    }



    /// Find the integer producer nearest to `distance` instructions before
    /// the next slot to be emitted, staying within the live rotation
    /// window. With `prefer_alu`, search among single-cycle ALU producers
    /// so chains run through the operations a pipelined scheduling loop
    /// penalizes (as real integer code's address/index arithmetic does).
    /// Returns the producer's destination register.
    fn int_source_at(&mut self, distance: u32, prefer_alu: bool) -> Reg {
        if self.int_producers.is_empty() {
            return Reg::int(BASE_REG);
        }
        let here = self.program.len() as i64;
        // Registers rotate over all int producers: anything more than 24
        // producers back has been overwritten.
        let live_floor_slot = {
            let lf = self.int_producers.len().saturating_sub(24);
            self.int_producers[lf]
        };
        let list: &[u32] = if prefer_alu && !self.alu_producers.is_empty() {
            &self.alu_producers
        } else {
            &self.int_producers
        };
        let target = here - i64::from(distance);
        let pos = match list.binary_search_by(|p| (i64::from(*p)).cmp(&target)) {
            Ok(k) => k,
            Err(0) => 0,
            Err(k) => k - 1,
        };
        let mut slot = list[pos];
        if slot < live_floor_slot {
            // Overwritten: take the oldest live producer from this list,
            // or the newest overall as a last resort.
            slot = match list.binary_search(&live_floor_slot) {
                Ok(k) => list[k],
                Err(k) if k < list.len() => list[k],
                Err(_) => *self.int_producers.last().expect("non-empty"),
            };
        }
        self.program
            .inst(slot)
            .and_then(|i| i.dst())
            .unwrap_or(Reg::int(BASE_REG))
    }


    fn push(&mut self, inst: StaticInst, model: SlotModel) -> u32 {
        let idx = self.program.push(inst);
        self.models.push(model);
        debug_assert_eq!(self.models.len(), self.program.len());
        if let Some(d) = inst.dst() {
            if d.is_int() {
                self.int_producers.push(idx);
                if inst.class() == mos_isa::InstClass::IntAlu {
                    self.alu_producers.push(idx);
                }
            } else {
                self.fp_producers.push(idx);
            }
        }
        idx
    }

    fn fresh_addr_model(&mut self) -> AddrModel {
        self.mem_slots += 1;
        let full = self.spec.working_set.max(8192);
        // Most slots work one of a few *shared* hot regions (stack frames,
        // hot structures) whose combined footprint fits the DL1; the rest
        // roam the full working set. This is what keeps real programs'
        // DL1 miss rates in single digits.
        let hot = self.rng.random::<f64>() < self.spec.hot_frac;
        let (base, span) = if hot {
            let region = self.rng.random_range(0..3u64);
            (HEAP_BASE + region * 4096, 4096)
        } else {
            // Offset cold streams so slots don't collide on the same lines.
            (HEAP_BASE + 16384 + (self.mem_slots * 8192) % full, full)
        };
        if self.rng.random::<f64>() < self.spec.stride_frac {
            // Unit-stride streaming: one miss per 64B line (8 words).
            AddrModel::Stride { base, stride: 8, span }
        } else {
            AddrModel::Random { base, span }
        }
    }

    /// Context-sensitive source selection: circular plan wiring inside the
    /// body (`ctx = Some(body slot)`), linear history elsewhere.
    fn src_int(&mut self, ctx: Option<usize>, d: u32, prefer_alu: bool) -> Reg {
        match ctx {
            Some(i) => self.circ_int_source(i, d, prefer_alu),
            // Leaf functions chain through their own scratch registers so
            // calls never clobber the body's loop-carried recurrences.
            None => {
                if self.fn_int_ordinal == 0 {
                    Reg::int(BASE_REG)
                } else {
                    Reg::int(27 + ((self.fn_int_ordinal - 1) % 2) as u8)
                }
            }
        }
    }

    fn src_fp(&mut self, ctx: Option<usize>, d: u32) -> Reg {
        match ctx {
            Some(i) => self.circ_fp_source(i, d),
            None => {
                if self.fn_fp_ordinal == 0 {
                    Reg::fp(26)
                } else {
                    Reg::fp(26 + ((self.fn_fp_ordinal - 1) % 2) as u8)
                }
            }
        }
    }

    fn dst_int(&mut self, ctx: Option<usize>) -> Reg {
        match ctx {
            Some(i) => self.plan_dst[i].expect("planned int dst"),
            None => {
                self.fn_int_ordinal += 1;
                Reg::int(27 + ((self.fn_int_ordinal - 1) % 2) as u8)
            }
        }
    }

    /// Emit one instruction of the given kind; branch targets are clamped
    /// to `body_end_hint`. `ctx` is the body slot for circular wiring, or
    /// `None` inside leaf functions.
    fn emit_slot(&mut self, kind: Kind, body_end_hint: u32, ctx: Option<usize>) {
        match kind {
            Kind::Alu => {
                let d1 = self.sample_distance();
                // Induction variables, pointer arithmetic and flag
                // computations chain through other single-cycle ALU ops;
                // this is the recurrence a pipelined scheduling loop hurts.
                let pa = self.rng.random::<f64>() < self.spec.chain_purity;
                let s1 = self.src_int(ctx, d1, pa);
                let dst = self.dst_int(ctx);
                // A minority of ALU ops are two-source.
                if self.rng.random::<f64>() < 0.4 {
                    let d2 = self.sample_distance();
                    let pa2 = self.rng.random::<f64>() < self.spec.chain_purity * 0.85;
                    let s2 = self.src_int(ctx, d2, pa2);
                    let op = *[Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or, Opcode::Xor]
                        .get(self.rng.random_range(0..5usize))
                        .expect("in range");
                    self.push(StaticInst::alu(op, dst, s1, s2), SlotModel::None);
                } else {
                    let op = *[Opcode::Addi, Opcode::Subi, Opcode::Slli, Opcode::Andi]
                        .get(self.rng.random_range(0..4usize))
                        .expect("in range");
                    let imm = self.rng.random_range(1..64);
                    self.push(StaticInst::alui(op, dst, s1, imm), SlotModel::None);
                }
            }
            Kind::Load => {
                let chase = self.rng.random::<f64>() >= self.spec.stride_frac;
                let base = if chase {
                    // Pointer chase: feed from the nearest earlier load
                    // (circularly in the body), else a recent producer.
                    let near_load = ctx.and_then(|i| {
                        let b = self.spec.body_len;
                        self.plan_load_slots
                            .iter()
                            .filter(|&&j| j != i)
                            .map(|&j| ((i + b - j - 1) % b + 1, j))
                            .filter(|&(dist, _)| dist <= 16)
                            .min_by_key(|&(dist, _)| dist)
                            .map(|(_, j)| j)
                    });
                    match near_load {
                        Some(j) => self.plan_dst[j].expect("load has dst"),
                        None => {
                            let d = self.sample_distance();
                            self.src_int(ctx, d, false)
                        }
                    }
                } else {
                    Reg::int(BASE_REG)
                };
                let dst = self.dst_int(ctx);
                let model = self.fresh_addr_model();
                let imm = self.rng.random_range(0..256) & !7;
                let idx = self.push(StaticInst::load(dst, imm, base), SlotModel::Mem(model));
                self.loads.push(idx);
            }
            Kind::Store => {
                let dd = self.sample_distance().min(8);
                let data = self.src_int(ctx, dd, true);
                let base = if self.rng.random::<f64>() < 0.5 {
                    Reg::int(BASE_REG)
                } else {
                    let d = self.sample_distance();
                    self.src_int(ctx, d, true)
                };
                let model = self.fresh_addr_model();
                let imm = self.rng.random_range(0..256) & !7;
                self.push(StaticInst::store(data, imm, base), SlotModel::Mem(model));
            }
            Kind::Branch => {
                let d = self.sample_distance().min(8);
                let cond = self.src_int(ctx, d, true);
                let skip = self.rng.random_range(2..=4u32);
                let here = self.program.len() as u32;
                let target = (here + 1 + skip).min(body_end_hint);
                let op = if self.rng.random::<f64>() < 0.5 {
                    Opcode::Beqz
                } else {
                    Opcode::Bnez
                };
                let x: f64 = self.rng.random();
                let model = if x < self.spec.random_branch_frac {
                    OutcomeModel::Random {
                        p: self.spec.random_taken_prob,
                    }
                } else if x < self.spec.random_branch_frac + 0.25 {
                    // A quarter of branches follow longer loop-like
                    // patterns the predictor mostly learns.
                    OutcomeModel::Pattern {
                        period: self.rng.random_range(8..=40),
                    }
                } else {
                    // The rest are strongly biased guards, mostly
                    // falling through (so taken skips rarely cut the
                    // loop-carried chains).
                    OutcomeModel::Bias {
                        taken: self.rng.random::<f64>() < 0.08,
                    }
                };
                self.push(
                    StaticInst::branch(op, cond, target),
                    SlotModel::Branch(model),
                );
            }
            Kind::Mul | Kind::Div => {
                let d1 = self.sample_distance();
                let s1 = self.src_int(ctx, d1, false);
                let d2 = self.sample_distance();
                let s2 = self.src_int(ctx, d2, false);
                let dst = self.dst_int(ctx);
                let op = if kind == Kind::Mul { Opcode::Mul } else { Opcode::Div };
                self.push(StaticInst::alu(op, dst, s1, s2), SlotModel::None);
            }
            Kind::Fp => {
                let s1 = {
                    let d = self.sample_distance();
                    self.src_fp(ctx, d)
                };
                let s2 = {
                    let d = self.sample_distance();
                    self.src_fp(ctx, d)
                };
                let dst = match ctx {
                    Some(i) => self.plan_dst[i].expect("planned fp dst"),
                    None => {
                        self.fn_fp_ordinal += 1;
                        Reg::fp(26 + ((self.fn_fp_ordinal - 1) % 2) as u8)
                    }
                };
                let op = *[Opcode::Fadd, Opcode::Fsub, Opcode::Fmul, Opcode::Fadd]
                    .get(self.rng.random_range(0..4usize))
                    .expect("in range");
                self.push(StaticInst::alu(op, dst, s1, s2), SlotModel::None);
            }
            Kind::Call => {
                // Patched to a real function entry after functions exist.
                self.push(StaticInst::call(0), SlotModel::None);
            }
        }
    }

    fn build(mut self) -> SyntheticProgram {
        let spec = self.spec;
        // Prologue.
        self.push(
            StaticInst::li(Reg::int(BASE_REG), HEAP_BASE as i64),
            SlotModel::None,
        );
        let body_top = self.program.len() as u32;
        self.program.set_label("body", body_top);
        let body_end_hint = body_top + spec.body_len as u32;

        let kinds = self.plan_body();
        let mut call_sites = Vec::new();
        for (i, kind) in kinds.into_iter().enumerate() {
            let before = self.program.len() as u32;
            self.emit_slot(kind, body_end_hint, Some(i));
            if self
                .program
                .inst(before)
                .is_some_and(|inst| inst.opcode() == Opcode::Call)
            {
                call_sites.push(before);
            }
        }
        // Back edge (inner loop) then outer jump.
        let cond = self.int_source_at(2, true);
        self.push(
            StaticInst::branch(Opcode::Bnez, cond, body_top),
            SlotModel::Branch(OutcomeModel::Loop {
                trip: spec.inner_trip.max(2),
            }),
        );
        self.push(StaticInst::jmp(body_top), SlotModel::None);
        self.push(StaticInst::halt(), SlotModel::None);

        // Leaf functions: bodies follow the same instruction mix (minus
        // control) so calls do not dilute the dynamic class composition.
        let mut fn_entries = Vec::new();
        for f in 0..3u32 {
            let entry = self.program.len() as u32;
            fn_entries.push(entry);
            let n = 3 + (f as usize) * 2;
            let fn_end = entry + n as u32;
            for _ in 0..n {
                let mut kind = self.sample_kind();
                if matches!(kind, Kind::Branch | Kind::Call) {
                    kind = Kind::Alu;
                }
                self.emit_slot(kind, fn_end, None);
            }
            self.push(StaticInst::ret(), SlotModel::None);
        }
        // Patch call targets round-robin.
        for (k, &site) in call_sites.iter().enumerate() {
            let target = fn_entries[k % fn_entries.len()];
            let patched = self
                .program
                .inst(site)
                .expect("call site exists")
                .with_target(target);
            *self.program.inst_mut(site).expect("call site exists") = patched;
        }
        // Clamp any branch targets that ran past the body into the back
        // edge (already ensured by body_end_hint, but validate).
        self.program.set_entry(0);
        self.program
            .validate()
            .expect("generated program must be structurally valid");

        SyntheticProgram {
            program: Arc::new(self.program),
            models: Arc::new(self.models),
            body_top,
        }
    }
}

/// A committed-path trace over a [`SyntheticProgram`]; deterministic in
/// its seed and cheap to clone (program shared, walk state copied).
#[derive(Debug, Clone)]
pub struct SynthTrace {
    program: Arc<Program>,
    models: Arc<Vec<SlotModel>>,
    rng: SmallRng,
    pc: u32,
    call_stack: Vec<u32>,
    counters: Vec<u64>,
    body_top: u32,
}

impl Iterator for SynthTrace {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        use mos_isa::InstClass::*;
        let sidx = self.pc;
        let inst = *self.program.inst(sidx)?;
        let mut taken = false;
        let mut eff_addr = None;
        let mut next = sidx + 1;
        match inst.class() {
            CondBranch => {
                let model = &self.models[sidx as usize];
                let c = self.counters[sidx as usize];
                self.counters[sidx as usize] += 1;
                taken = match model {
                    SlotModel::Branch(OutcomeModel::Loop { trip }) => {
                        !(c + 1).is_multiple_of(u64::from(*trip))
                    }
                    SlotModel::Branch(OutcomeModel::Bias { taken }) => *taken,
                    SlotModel::Branch(OutcomeModel::Pattern { period }) => {
                        c.is_multiple_of(u64::from(*period))
                    }
                    SlotModel::Branch(OutcomeModel::Random { p }) => {
                        self.rng.random::<f64>() < *p
                    }
                    _ => false,
                };
                if taken {
                    next = inst.target().expect("branches have targets");
                }
            }
            Jump => {
                taken = true;
                next = inst.target().expect("jumps have targets");
            }
            Call => {
                taken = true;
                self.call_stack.push(sidx + 1);
                next = inst.target().expect("calls have targets");
            }
            Return | IndirectJump => {
                taken = true;
                next = self.call_stack.pop().unwrap_or(self.body_top);
            }
            Load | Store => {
                let model = &self.models[sidx as usize];
                let c = self.counters[sidx as usize];
                self.counters[sidx as usize] += 1;
                let addr = match model {
                    SlotModel::Mem(AddrModel::Stride { base, stride, span }) => {
                        base + (c * stride) % span
                    }
                    SlotModel::Mem(AddrModel::Random { base, span }) => {
                        base + (self.rng.random_range(0..span / 8)) * 8
                    }
                    _ => HEAP_BASE,
                };
                eff_addr = Some(addr);
            }
            Halt => return None,
            _ => {}
        }
        self.pc = next;
        Some(DynInst {
            sidx,
            next_sidx: next,
            taken,
            eff_addr,
        })
    }
}

impl TraceSource for SynthTrace {
    fn program(&self) -> &Program {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2000;
    use std::collections::HashMap;

    fn take(name: &str, n: usize) -> (SynthTrace, Vec<DynInst>) {
        let spec = spec2000::by_name(name).unwrap();
        let mut t = spec.trace(42);
        let v: Vec<DynInst> = t.by_ref().take(n).collect();
        (t, v)
    }

    #[test]
    fn programs_validate_for_all_specs() {
        for s in spec2000::all() {
            let p = s.build(1);
            assert!(p.program().validate().is_ok(), "{}", s.name);
            assert!(p.program().len() > s.body_len, "{}", s.name);
        }
    }

    #[test]
    fn walk_is_deterministic_and_clone_independent() {
        let spec = spec2000::by_name("gzip").unwrap();
        let a: Vec<DynInst> = spec.trace(7).take(5_000).collect();
        let b: Vec<DynInst> = spec.trace(7).take(5_000).collect();
        assert_eq!(a, b);
        let mut t = spec.trace(7);
        let c = t.clone();
        let _ = t.by_ref().take(100).count();
        let d: Vec<DynInst> = c.take(5_000).collect();
        assert_eq!(a, d, "clones rewind to their capture point");
    }

    #[test]
    fn trace_is_effectively_endless() {
        let (_, v) = take("bzip", 100_000);
        assert_eq!(v.len(), 100_000);
    }

    #[test]
    fn next_sidx_chains_consistently() {
        let (_, v) = take("parser", 20_000);
        for w in v.windows(2) {
            assert_eq!(w[0].next_sidx, w[1].sidx);
        }
    }

    #[test]
    fn taken_flags_match_targets() {
        let spec = spec2000::by_name("crafty").unwrap();
        let mut t = spec.trace(3);
        let p = t.program().clone();
        for d in t.by_ref().take(20_000) {
            let inst = p.inst(d.sidx).unwrap();
            if d.taken {
                assert!(inst.is_control(), "only control can be taken: {inst}");
                if let Some(tg) = inst.target() {
                    assert_eq!(d.next_sidx, tg);
                }
            } else {
                assert_eq!(d.next_sidx, d.sidx + 1);
            }
        }
    }

    #[test]
    fn mix_fractions_roughly_match_spec() {
        for name in ["gzip", "mcf", "eon"] {
            let spec = spec2000::by_name(name).unwrap();
            let mut t = spec.trace(11);
            let p = t.program().clone();
            let mut counts: HashMap<&'static str, usize> = HashMap::new();
            let n = 50_000;
            for d in t.by_ref().take(n) {
                use mos_isa::InstClass::*;
                let k = match p.inst(d.sidx).unwrap().class() {
                    Load => "load",
                    Store => "store",
                    CondBranch => "branch",
                    FpAlu | FpMul | FpDiv => "fp",
                    IntAlu => "alu",
                    _ => "other",
                };
                *counts.entry(k).or_default() += 1;
            }
            let frac = |k: &str| *counts.get(k).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (frac("load") - spec.mix.load).abs() < 0.06,
                "{name} load {:.3} vs {:.3}",
                frac("load"),
                spec.mix.load
            );
            assert!(
                (frac("fp") - spec.mix.fp).abs() < 0.06,
                "{name} fp {:.3} vs {:.3}",
                frac("fp"),
                spec.mix.fp
            );
        }
    }

    #[test]
    fn memory_addresses_stay_in_working_set() {
        let spec = spec2000::by_name("mcf").unwrap();
        let mut t = spec.trace(5);
        for d in t.by_ref().take(30_000) {
            if let Some(a) = d.eff_addr {
                assert!(a >= HEAP_BASE);
                // Slot bases are spread over the working set and spans
                // extend past them.
                assert!(a < HEAP_BASE + 2 * spec.working_set + 8192 + 256);
            }
        }
    }

    #[test]
    fn gap_has_shorter_dataflow_than_vortex() {
        // Measure mean consumer->producer distance over the dynamic stream.
        let mean_dist = |name: &str| {
            let spec = spec2000::by_name(name).unwrap();
            let mut t = spec.trace(9);
            let p = t.program().clone();
            let mut last_writer: HashMap<mos_isa::Reg, usize> = HashMap::new();
            let mut sum = 0usize;
            let mut cnt = 0usize;
            for (k, d) in t.by_ref().take(40_000).enumerate() {
                let inst = p.inst(d.sidx).unwrap();
                for s in inst.src_regs() {
                    if s == Reg::int(BASE_REG) {
                        continue;
                    }
                    if let Some(&w) = last_writer.get(&s) {
                        sum += k - w;
                        cnt += 1;
                    }
                }
                if let Some(dst) = inst.dst() {
                    last_writer.insert(dst, k);
                }
            }
            sum as f64 / cnt as f64
        };
        let gap = mean_dist("gap");
        let vortex = mean_dist("vortex");
        assert!(
            gap + 2.0 < vortex,
            "gap ({gap:.2}) must be much shorter than vortex ({vortex:.2})"
        );
    }

    #[test]
    fn calls_and_returns_balance() {
        let (_, v) = take("perl", 50_000);
        let spec_prog = spec2000::by_name("perl").unwrap().build(42);
        let p = spec_prog.program();
        let mut depth: i64 = 0;
        for d in &v {
            match p.inst(d.sidx).unwrap().class() {
                mos_isa::InstClass::Call => depth += 1,
                mos_isa::InstClass::Return => depth -= 1,
                _ => {}
            }
            assert!((0..=2).contains(&depth), "leaf calls only");
        }
    }

    #[test]
    fn loop_back_edge_taken_rate_matches_trip() {
        let spec = spec2000::by_name("gzip").unwrap();
        let prog = spec.build(42);
        let p = prog.program().clone();
        let mut t = prog.walk(1);
        // Find the back edge: the conditional branch targeting `body`.
        let body = p.label("body").unwrap();
        let mut taken = 0usize;
        let mut total = 0usize;
        for d in t.by_ref().take(100_000) {
            let inst = p.inst(d.sidx).unwrap();
            if inst.is_cond_branch() && inst.target() == Some(body) {
                total += 1;
                taken += usize::from(d.taken);
            }
        }
        assert!(total > 100);
        let rate = taken as f64 / total as f64;
        let expect = (spec.inner_trip as f64 - 1.0) / spec.inner_trip as f64;
        assert!(
            (rate - expect).abs() < 0.05,
            "back-edge taken rate {rate:.3} vs expected {expect:.3}"
        );
    }
}

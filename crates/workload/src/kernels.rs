//! Hand-written assembly kernels, functionally executed by `mos-asm` to
//! produce architecturally exact traces. Used by examples and by the
//! integration tests that cross-check the timing pipeline against the
//! functional machine.

use mos_asm::{assemble, Image, Interpreter};

/// A named kernel: source plus the expected result register/value used by
/// correctness tests.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name.
    pub name: &'static str,
    /// Assembly source.
    pub source: &'static str,
    /// `(integer register number, expected final value)` checked after a
    /// clean halt.
    pub expect: (u8, i64),
}

impl Kernel {
    /// Assemble the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the built-in source fails to assemble (a library bug).
    pub fn image(&self) -> Image {
        assemble(self.source).expect("built-in kernel must assemble")
    }

    /// Start a functional interpretation.
    pub fn interpreter(&self) -> Interpreter {
        Interpreter::new(&self.image())
    }
}

/// Sum of 1..=100 via a counted loop: a dense chain of single-cycle ops —
/// macro-op friendly.
pub const SUM_LOOP: Kernel = Kernel {
    name: "sum_loop",
    source: r"
        li   r1, 100        ; n
        li   r2, 0          ; sum
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bnez r1, loop
        mov  r10, r2
        halt",
    expect: (10, 5050),
};

/// Dot product of two 64-element vectors initialized in memory.
pub const DOT_PRODUCT: Kernel = Kernel {
    name: "dot_product",
    source: r"
        ; initialize a[i] = i+1, b[i] = 2 at 0x1000 / 0x2000
        li   r1, 64
        li   r2, 0x1000
        li   r3, 0x2000
        li   r4, 1
        li   r5, 2
    init:
        st   r4, 0(r2)
        st   r5, 0(r3)
        addi r4, r4, 1
        addi r2, r2, 8
        addi r3, r3, 8
        addi r1, r1, -1
        bnez r1, init
        ; dot = sum a[i]*b[i] = 2 * (64*65/2) = 4160
        li   r1, 64
        li   r2, 0x1000
        li   r3, 0x2000
        li   r6, 0
    dot:
        ld   r7, 0(r2)
        ld   r8, 0(r3)
        mul  r9, r7, r8
        add  r6, r6, r9
        addi r2, r2, 8
        addi r3, r3, 8
        addi r1, r1, -1
        bnez r1, dot
        mov  r10, r6
        halt",
    expect: (10, 4160),
};

/// Build a 32-node linked list then chase it twice: load-to-load chains
/// that stress the memory system and speculative scheduling.
pub const LIST_CHASE: Kernel = Kernel {
    name: "list_chase",
    source: r"
        ; node i at 0x4000 + 48*i: [next, value]
        li   r1, 32
        li   r2, 0x4000
        li   r4, 7
    build:
        addi r3, r2, 48     ; next pointer
        st   r3, 0(r2)
        st   r4, 8(r2)
        mov  r2, r3
        addi r1, r1, -1
        bnez r1, build
        ; terminate the list
        li   r2, 0x4000
        li   r5, 1504       ; 0x4000 + 48*31 + ... recompute: last node
        li   r5, 0
        li   r6, 0x45d0     ; 0x4000 + 48*31 = 0x45d0
        st   r5, 0(r6)
        ; two traversal passes summing values
        li   r9, 0          ; total
        li   r8, 2          ; passes
    pass:
        li   r2, 0x4000
    chase:
        ld   r4, 8(r2)
        add  r9, r9, r4
        ld   r2, 0(r2)
        bnez r2, chase
        addi r8, r8, -1
        bnez r8, pass
        mov  r10, r9
        halt",
    expect: (10, 7 * 32 * 2),
};

/// FNV-style hash over 128 bytes: shifts, xors and multiplies.
pub const STRING_HASH: Kernel = Kernel {
    name: "string_hash",
    source: r"
        ; data[i] = (i * 37) & 0xff at 0x3000, 16 words
        li   r1, 16
        li   r2, 0x3000
        li   r3, 0
    fill:
        mul  r4, r3, r3
        addi r4, r4, 131
        st   r4, 0(r2)
        addi r2, r2, 8
        addi r3, r3, 1
        addi r1, r1, -1
        bnez r1, fill
        ; hash
        li   r1, 16
        li   r2, 0x3000
        li   r5, 1469
    hash:
        ld   r6, 0(r2)
        xor  r5, r5, r6
        slli r7, r5, 5
        add  r5, r5, r7
        andi r5, r5, 0xffffff
        addi r2, r2, 8
        addi r1, r1, -1
        bnez r1, hash
        mov  r10, r5
        halt",
    expect: (10, -1), // value checked against the interpreter, not a constant
};

/// Iterative Fibonacci(30): the tightest possible dependent chain.
pub const FIBONACCI: Kernel = Kernel {
    name: "fibonacci",
    source: r"
        li   r1, 0          ; f(0)
        li   r2, 1          ; f(1)
        li   r3, 29         ; iterations
    fib:
        add  r4, r1, r2
        mov  r1, r2
        mov  r2, r4
        addi r3, r3, -1
        bnez r3, fib
        mov  r10, r2
        halt",
    expect: (10, 832040),
};

/// Bubble sort over 24 descending values: data-dependent branches the
/// predictor struggles with.
pub const BUBBLE_SORT: Kernel = Kernel {
    name: "bubble_sort",
    source: r"
        ; a[i] = 24 - i at 0x5000
        li   r1, 24
        li   r2, 0x5000
        li   r3, 24
    fill:
        st   r3, 0(r2)
        addi r2, r2, 8
        addi r3, r3, -1
        addi r1, r1, -1
        bnez r1, fill
        ; bubble passes
        li   r9, 23         ; outer
    outer:
        li   r2, 0x5000
        li   r1, 23         ; inner comparisons
    inner:
        ld   r4, 0(r2)
        ld   r5, 8(r2)
        slt  r6, r5, r4     ; swap if a[i+1] < a[i]
        beqz r6, noswap
        st   r5, 0(r2)
        st   r4, 8(r2)
    noswap:
        addi r2, r2, 8
        addi r1, r1, -1
        bnez r1, inner
        addi r9, r9, -1
        bnez r9, outer
        ; check: first element must be 1, last 24
        li   r2, 0x5000
        ld   r7, 0(r2)
        ld   r8, 184(r2)
        slli r8, r8, 8
        add  r10, r8, r7    ; 24*256 + 1 = 6145
        halt",
    expect: (10, 6145),
};

/// Function-call-heavy kernel exercising the return-address stack.
pub const CALL_TREE: Kernel = Kernel {
    name: "call_tree",
    source: r"
        .entry main
    double:
        add  r5, r5, r5
        ret
    inc:
        addi r5, r5, 1
        ret
    main:
        li   r5, 1
        li   r6, 10
    loop:
        call double
        call inc
        addi r6, r6, -1
        bnez r6, loop
        mov  r10, r5
        halt",
    expect: (10, 2047),
};

/// 8x8 integer matrix multiply: nested loops, strided loads, dense
/// multiply-accumulate chains.
pub const MATMUL: Kernel = Kernel {
    name: "matmul",
    source: r"
        ; A[i][j] = i + j at 0x6000, B[i][j] = (i == j) * 2 at 0x8000 (scaled identity)
        li   r1, 0          ; i
    init_i:
        li   r2, 0          ; j
    init_j:
        slli r3, r1, 3      ; i * 8
        add  r3, r3, r2     ; i*8 + j
        slli r3, r3, 3      ; byte offset
        add  r4, r1, r2     ; a value
        li   r5, 0x6000
        add  r5, r5, r3
        st   r4, 0(r5)
        cmpeq r6, r1, r2    ; identity?
        slli r6, r6, 1      ; * 2
        li   r5, 0x8000
        add  r5, r5, r3
        st   r6, 0(r5)
        addi r2, r2, 1
        slti r7, r2, 8
        bnez r7, init_j
        addi r1, r1, 1
        slti r7, r1, 8
        bnez r7, init_i
        ; C = A * B; with B = 2I, C[i][j] = 2 * A[i][j]
        li   r1, 0          ; i
    mul_i:
        li   r2, 0          ; j
    mul_j:
        li   r8, 0          ; acc
        li   r9, 0          ; k
    mul_k:
        slli r3, r1, 3
        add  r3, r3, r9
        slli r3, r3, 3
        li   r5, 0x6000
        add  r5, r5, r3
        ld   r10, 0(r5)     ; A[i][k]
        slli r3, r9, 3
        add  r3, r3, r2
        slli r3, r3, 3
        li   r5, 0x8000
        add  r5, r5, r3
        ld   r11, 0(r5)     ; B[k][j]
        mul  r12, r10, r11
        add  r8, r8, r12
        addi r9, r9, 1
        slti r7, r9, 8
        bnez r7, mul_k
        slli r3, r1, 3
        add  r3, r3, r2
        slli r3, r3, 3
        li   r5, 0xa000
        add  r5, r5, r3
        st   r8, 0(r5)
        addi r2, r2, 1
        slti r7, r2, 8
        bnez r7, mul_j
        addi r1, r1, 1
        slti r7, r1, 8
        bnez r7, mul_i
        ; check C[3][5] = 2 * (3 + 5) = 16
        li   r5, 0xa000
        ld   r10, 328(r5)   ; (3*8+5)*8 = 232... recompute: (24+5)*8 = 232
        li   r5, 0xa0e8     ; 0xa000 + 232
        ld   r10, 0(r5)
        mov  r10, r10
        halt",
    expect: (10, 16),
};

/// CRC-like rolling checksum over 64 words: xor/shift/conditional-xor —
/// branchy bit manipulation with a tight recurrence.
pub const CHECKSUM: Kernel = Kernel {
    name: "checksum",
    source: r"
        ; data[i] = i*2654435761 & 0xffff at 0xb000
        li   r1, 64
        li   r2, 0xb000
        li   r3, 0
        li   r4, 40503
    fill:
        mul  r5, r3, r4
        andi r5, r5, 0xffff
        st   r5, 0(r2)
        addi r2, r2, 8
        addi r3, r3, 1
        addi r1, r1, -1
        bnez r1, fill
        ; rolling checksum
        li   r1, 64
        li   r2, 0xb000
        li   r6, 0x1d0f     ; state
    roll:
        ld   r7, 0(r2)
        xor  r6, r6, r7
        andi r8, r6, 1
        srli r6, r6, 1
        beqz r8, even
        xori r6, r6, 0x2d5
    even:
        addi r2, r2, 8
        addi r1, r1, -1
        bnez r1, roll
        mov  r10, r6
        halt",
    expect: (10, -1), // self-consistency checked against the interpreter
};

/// Binary search over a sorted 64-entry table, repeated for 32 keys:
/// hard-to-predict branches with short dependent address arithmetic.
pub const BINSEARCH: Kernel = Kernel {
    name: "binsearch",
    source: r"
        ; table[i] = i * 3 at 0xc000
        li   r1, 64
        li   r2, 0xc000
        li   r3, 0
    fill:
        st   r3, 0(r2)
        addi r3, r3, 3
        addi r2, r2, 8
        addi r1, r1, -1
        bnez r1, fill
        ; search keys 0, 7, 14, ... counting hits (multiples of 3)
        li   r9, 0          ; hits
        li   r8, 0          ; key
        li   r7, 32         ; searches
    next_key:
        li   r1, 0          ; lo
        li   r2, 64         ; hi
    search:
        sub  r3, r2, r1
        slti r4, r3, 1
        bnez r4, done_search
        add  r5, r1, r2
        srli r5, r5, 1      ; mid
        slli r6, r5, 3
        li   r11, 0xc000
        add  r11, r11, r6
        ld   r6, 0(r11)     ; table[mid]
        cmpeq r12, r6, r8
        bnez r12, found
        slt  r12, r6, r8
        beqz r12, go_left
        addi r1, r5, 1
        j    search
    go_left:
        mov  r2, r5
        j    search
    found:
        addi r9, r9, 1
    done_search:
        addi r8, r8, 7
        andi r8, r8, 0xbf   ; wrap key into 0..191
        addi r7, r7, -1
        bnez r7, next_key
        mov  r10, r9
        halt",
    expect: (10, -1), // counted hits checked for self-consistency
};

/// All built-in kernels.
pub fn all() -> Vec<Kernel> {
    vec![
        SUM_LOOP,
        DOT_PRODUCT,
        LIST_CHASE,
        STRING_HASH,
        FIBONACCI,
        BUBBLE_SORT,
        CALL_TREE,
        MATMUL,
        CHECKSUM,
        BINSEARCH,
    ]
}

/// Look a kernel up by name.
pub fn by_name(name: &str) -> Option<Kernel> {
    all().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mos_isa::Reg;

    #[test]
    fn all_kernels_assemble_and_halt_cleanly() {
        for k in all() {
            let mut interp = k.interpreter();
            let n = interp.by_ref().take(2_000_000).count();
            assert!(interp.stopped_cleanly(), "{} did not halt (ran {n})", k.name);
        }
    }

    #[test]
    fn kernels_compute_expected_results() {
        for k in all() {
            if k.expect.1 < 0 {
                continue; // checked for self-consistency only
            }
            let (_, state) = k.interpreter().run_collect(2_000_000);
            assert_eq!(
                state.int_reg(Reg::int(k.expect.0)),
                k.expect.1,
                "{} result mismatch",
                k.name
            );
        }
    }

    #[test]
    fn hash_kernel_is_deterministic_and_nonzero() {
        let (_, a) = STRING_HASH.interpreter().run_collect(1_000_000);
        let (_, b) = STRING_HASH.interpreter().run_collect(1_000_000);
        let va = a.int_reg(Reg::int(10));
        assert_eq!(va, b.int_reg(Reg::int(10)));
        assert_ne!(va, 0);
    }

    #[test]
    fn kernels_have_unique_names() {
        let names: Vec<_> = all().iter().map(|k| k.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn by_name_round_trips() {
        for k in all() {
            assert_eq!(by_name(k.name).unwrap().name, k.name);
        }
    }
}

//! The twelve synthetic SPEC CINT2000 benchmark models (Table 2 of the
//! paper), each calibrated to the per-benchmark characteristics the
//! paper's mechanisms react to. See DESIGN.md for the substitution
//! rationale and EXPERIMENTS.md for paper-vs-measured comparisons.


use crate::synth::{SynthTrace, SyntheticProgram};

/// Instruction-mix fractions of committed instructions; the remainder
/// after all named classes is single-cycle integer ALU work — i.e. the
/// value-generating MOP-candidate fraction of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// Integer loads.
    pub load: f64,
    /// Integer stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
    /// Integer multiplies (3-cycle).
    pub mul: f64,
    /// Integer divides (20-cycle).
    pub div: f64,
    /// Floating-point operations (2/4-cycle mix).
    pub fp: f64,
    /// Leaf-function calls (candidates that write the return address).
    pub call: f64,
}

impl Mix {
    /// ALU fraction implied by the named classes (the remainder).
    pub fn alu(&self) -> f64 {
        1.0 - (self.load + self.store + self.branch + self.mul + self.div + self.fp + self.call)
    }
}

/// The dependence-distance model: a consumer reads a producer `d`
/// instructions earlier, with `d` drawn from a short geometric component
/// (probability `short_frac`, success rate `geo_p`, offset 1) and a long
/// uniform tail over `8..=long_max` otherwise. Short-dominated specs (gap)
/// reproduce Figure 6's short bars; tail-heavy specs (vortex) its long
/// ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceModel {
    /// Probability the edge is short (geometric).
    pub short_frac: f64,
    /// Geometric success probability; mean short distance ≈ `1/geo_p`.
    pub geo_p: f64,
    /// Upper bound of the uniform long tail (inclusive).
    pub long_max: u32,
}

/// A synthetic benchmark model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (SPEC CINT2000).
    pub name: &'static str,
    /// Static loop-body length in instructions.
    pub body_len: usize,
    /// Instruction mix.
    pub mix: Mix,
    /// Dependence-distance model.
    pub distance: DistanceModel,
    /// Fraction of conditional branches with data-dependent (Bernoulli)
    /// outcomes the predictor cannot learn; the rest follow short repeating
    /// patterns that gshare captures.
    pub random_branch_frac: f64,
    /// Taken probability of the random branches.
    pub random_taken_prob: f64,
    /// Memory working-set size in bytes (drives DL1/L2 miss rates).
    pub working_set: u64,
    /// Fraction of memory operations that stream with a fixed stride; the
    /// rest scatter uniformly (pointer chasing).
    pub stride_frac: f64,
    /// Fraction of memory slots confined to a small hot region (stack
    /// frames, hot structures) rather than roaming the full working set;
    /// the main DL1 miss-rate lever.
    pub hot_frac: f64,
    /// Probability an ALU operation's chained source stays on the
    /// single-cycle ALU spine rather than joining a load/multiply result.
    /// High purity makes the workload scheduling-loop-bound (gap); low
    /// purity hides the loop behind multi-cycle latencies (vortex).
    pub chain_purity: f64,
    /// Inner-loop trip count (the body's back edge is taken
    /// `trip - 1` out of `trip` times).
    pub inner_trip: u32,
}

impl WorkloadSpec {
    /// Build the static program for this spec, deterministically from
    /// `seed`.
    pub fn build(&self, seed: u64) -> SyntheticProgram {
        SyntheticProgram::generate(self, seed)
    }

    /// Build the program and return a committed-path trace source over it
    /// (program and walk both derived deterministically from `seed`).
    pub fn trace(&self, seed: u64) -> SynthTrace {
        self.build(seed).walk(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
}

macro_rules! spec {
    ($name:literal, body=$body:expr, load=$load:expr, store=$store:expr, br=$br:expr,
     mul=$mul:expr, div=$div:expr, fp=$fp:expr, call=$call:expr,
     short=$short:expr, geo=$geo:expr, longmax=$longmax:expr,
     randbr=$randbr:expr, takenp=$takenp:expr, ws=$ws:expr, stride=$stride:expr,
     hot=$hot:expr, purity=$purity:expr, trip=$trip:expr) => {
        WorkloadSpec {
            name: $name,
            body_len: $body,
            mix: Mix {
                load: $load,
                store: $store,
                branch: $br,
                mul: $mul,
                div: $div,
                fp: $fp,
                call: $call,
            },
            distance: DistanceModel {
                short_frac: $short,
                geo_p: $geo,
                long_max: $longmax,
            },
            random_branch_frac: $randbr,
            random_taken_prob: $takenp,
            working_set: $ws,
            stride_frac: $stride,
            hot_frac: $hot,
            chain_purity: $purity,
            inner_trip: $trip,
        }
    };
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The twelve benchmark models. Calibration targets (paper):
/// value-generating candidates % of committed instructions = Figure 6's
/// header row; dependence distances per Figure 6's bars; base IPC near
/// Table 2.
pub fn all() -> Vec<WorkloadSpec> {
    // In each entry the named classes sum to 1 - valuegen target, so that
    // alu + call = Figure 6's value-generating candidate fraction.
    vec![
        // bzip: 49.2 % valuegen; compression loops, modest working set.
        spec!("bzip", body=160, load=0.25, store=0.10, br=0.145, mul=0.013, div=0.0, fp=0.0, call=0.028,
              short=0.78, geo=0.40, longmax=32, randbr=0.12, takenp=0.35, ws=256*KB, stride=0.75, hot=0.9, purity=0.8, trip=24),
        // crafty: 50.9 %; chess eval, branchy with bit tricks.
        spec!("crafty", body=192, load=0.24, store=0.08, br=0.155, mul=0.013, div=0.003, fp=0.0, call=0.035,
              short=0.75, geo=0.38, longmax=36, randbr=0.14, takenp=0.40, ws=96*KB, stride=0.55, hot=0.9, purity=0.85, trip=16),
        // eon: only 27.8 % valuegen — FP-heavy C++ ray tracer, high ILP.
        spec!("eon", body=176, load=0.24, store=0.13, br=0.10, mul=0.012, div=0.0, fp=0.24, call=0.045,
              short=0.55, geo=0.30, longmax=40, randbr=0.08, takenp=0.30, ws=64*KB, stride=0.80, hot=0.88, purity=0.7, trip=20),
        // gap: 48.7 %; very short dependence edges (87 % of pairs within
        // 8 insts) — the worst case for 2-cycle scheduling (-19.1 %).
        spec!("gap", body=168, load=0.3, store=0.11, br=0.06, mul=0.04, div=0.003, fp=0.0, call=0.03,
              short=0.95, geo=0.7, longmax=24, randbr=0.02, takenp=0.3, ws=192*KB, stride=0.95, hot=0.995, purity=0.97, trip=28),
        // gcc: 37.4 %; big instruction footprint, mixed distances.
        spec!("gcc", body=320, load=0.27, store=0.13, br=0.19, mul=0.026, div=0.0, fp=0.01, call=0.04,
              short=0.68, geo=0.34, longmax=40, randbr=0.16, takenp=0.38, ws=512*KB, stride=0.50, hot=0.8, purity=0.8, trip=10),
        // gzip: 56.3 % — the highest candidate fraction, short edges.
        spec!("gzip", body=136, load=0.21, store=0.08, br=0.135, mul=0.012, div=0.0, fp=0.0, call=0.02,
              short=0.9, geo=0.6, longmax=28, randbr=0.04, takenp=0.32, ws=128*KB, stride=0.75, hot=0.99, purity=0.93, trip=32),
        // mcf: 40.2 %; pointer chasing over a working set far beyond L2 —
        // Table 2's 0.34 IPC comes from memory, not the scheduler.
        spec!("mcf", body=128, load=0.31, store=0.09, br=0.19, mul=0.008, div=0.0, fp=0.0, call=0.015,
              short=0.72, geo=0.40, longmax=28, randbr=0.1, takenp=0.30, ws=8*MB, stride=0.10, hot=0.42, purity=0.72, trip=40),
        // parser: 47.5 %; short-ish edges, mid working set.
        spec!("parser", body=192, load=0.28, store=0.11, br=0.11, mul=0.025, div=0.0, fp=0.0, call=0.035,
              short=0.9, geo=0.6, longmax=32, randbr=0.05, takenp=0.36, ws=320*KB, stride=0.45, hot=0.98, purity=0.9, trip=14),
        // perl: 42.7 %; interpreter dispatch, mixed.
        spec!("perl", body=224, load=0.28, store=0.12, br=0.14, mul=0.013, div=0.0, fp=0.0, call=0.05,
              short=0.72, geo=0.42, longmax=36, randbr=0.08, takenp=0.38, ws=192*KB, stride=0.55, hot=0.94, purity=0.82, trip=12),
        // twolf: 47.7 %; placement/routing loops.
        spec!("twolf", body=132, load=0.27, store=0.11, br=0.1, mul=0.03, div=0.003, fp=0.02, call=0.025,
              short=0.9, geo=0.6, longmax=32, randbr=0.05, takenp=0.34, ws=256*KB, stride=0.50, hot=0.98, purity=0.9, trip=18),
        // vortex: 37.6 %; the longest dependence edges (only 54 % of
        // pairs within 8 insts) — 2-cycle scheduling barely hurts (-1.3 %).
        spec!("vortex", body=288, load=0.28, store=0.15, br=0.17, mul=0.014, div=0.0, fp=0.01, call=0.05,
              short=0.48, geo=0.28, longmax=44, randbr=0.1, takenp=0.30, ws=448*KB, stride=0.60, hot=0.75, purity=0.7, trip=12),
        // vpr: 44.7 %; FPGA place & route, slight FP.
        spec!("vpr", body=176, load=0.25, store=0.10, br=0.14, mul=0.013, div=0.0, fp=0.05, call=0.03,
              short=0.85, geo=0.5, longmax=32, randbr=0.06, takenp=0.34, ws=160*KB, stride=0.55, hot=0.95, purity=0.92, trip=20),
    ]
}

/// Look a benchmark model up by name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// The benchmark names in the paper's presentation order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_in_paper_order() {
        let n = names();
        assert_eq!(
            n,
            vec![
                "bzip", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser", "perl", "twolf",
                "vortex", "vpr"
            ]
        );
    }

    #[test]
    fn mixes_are_sane() {
        for s in all() {
            let alu = s.mix.alu();
            assert!(alu > 0.2 && alu < 0.6, "{}: alu {alu}", s.name);
            let total = s.mix.load
                + s.mix.store
                + s.mix.branch
                + s.mix.mul
                + s.mix.div
                + s.mix.fp
                + s.mix.call
                + alu;
            assert!((total - 1.0).abs() < 1e-9, "{}", s.name);
        }
    }

    #[test]
    fn valuegen_fraction_tracks_figure6_header() {
        // Figure 6's `% total insts` per benchmark: value-generating
        // candidates = ALU + calls in our model.
        let paper = [
            ("bzip", 49.2),
            ("crafty", 50.9),
            ("eon", 27.8),
            ("gap", 48.7),
            ("gcc", 37.4),
            ("gzip", 56.3),
            ("mcf", 40.2),
            ("parser", 47.5),
            ("perl", 42.7),
            ("twolf", 47.7),
            ("vortex", 37.6),
            ("vpr", 44.7),
        ];
        for (name, pct) in paper {
            let s = by_name(name).unwrap();
            let vg = (s.mix.alu() + s.mix.call) * 100.0;
            assert!(
                (vg - pct).abs() < 3.0,
                "{name}: model {vg:.1}% vs paper {pct}%"
            );
        }
    }

    #[test]
    fn by_name_misses_unknown() {
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn gap_is_shorter_than_vortex() {
        let gap = by_name("gap").unwrap();
        let vortex = by_name("vortex").unwrap();
        assert!(gap.distance.short_frac > vortex.distance.short_frac + 0.3);
    }
}

//! # mos-workload
//!
//! Workloads for the `mopsched` study. The paper evaluated SPEC CINT2000
//! Alpha binaries; those cannot be run here, so this crate provides the
//! documented substitution (see DESIGN.md §2):
//!
//! * [`spec2000`] — twelve **synthetic benchmark models** named for the
//!   paper's benchmarks. Each [`WorkloadSpec`] fixes the knobs the paper's
//!   mechanisms are sensitive to — the fraction of value-generating MOP
//!   candidates (Figure 6's `% total insts` header), the dependence-edge
//!   distance distribution (Figure 6's bars: gap short, vortex long), the
//!   instruction mix, branch predictability, and the memory working set
//!   (mcf ≫ L2). `synth` expands a spec into a real *static program*
//!   (loop body with skip-branch diamonds, leaf calls, a back edge) plus a
//!   seeded stochastic walker yielding the committed-path trace, so PCs
//!   repeat, predictors learn, I-cache lines and MOP pointers get reuse,
//!   and wrong-path fetch walks real code.
//! * [`kernels`] — hand-written assembly kernels executed exactly by the
//!   `mos-asm` interpreter, used by examples and correctness tests.
//!
//! ```
//! use mos_isa::TraceSource;
//! let mut trace = mos_workload::spec2000::by_name("gzip").unwrap().trace(7);
//! let first = trace.next().unwrap();
//! assert!(trace.program().inst(first.sidx).is_some());
//! ```

#![warn(missing_docs)]

pub mod kernels;
pub mod spec2000;
mod synth;

pub use spec2000::WorkloadSpec;
pub use synth::{SynthTrace, SyntheticProgram};
